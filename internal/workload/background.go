package workload

import (
	"fmt"

	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/topology"
)

// BackgroundKind selects the paper's two synthetic interference patterns
// (Sec. IV-C).
type BackgroundKind int

const (
	// UniformRandom has every background node send one message to a random
	// background peer each interval, spread across the interval — balanced
	// external traffic.
	UniformRandom BackgroundKind = iota
	// Bursty has every background node send to FanOut peers (all of them
	// by default) simultaneously each interval — bursty external traffic.
	Bursty
)

func (k BackgroundKind) String() string {
	switch k {
	case UniformRandom:
		return "uniform"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("BackgroundKind(%d)", int(k))
	}
}

// BackgroundConfig parameterizes a synthetic background job. The paper's
// Table II loads correspond to MsgBytes = 16 KiB for the uniform pattern,
// and per-peer bursts of 16 KiB (CR run) or 1 KiB (FB/AMG runs).
type BackgroundConfig struct {
	Kind     BackgroundKind
	MsgBytes int64
	Interval des.Time
	// FanOut limits how many peers each node addresses per burst;
	// 0 means every other background node (the paper's pattern). Ignored
	// for UniformRandom.
	FanOut int
}

// Validate reports configuration errors.
func (c BackgroundConfig) Validate() error {
	switch {
	case c.MsgBytes < 1:
		return fmt.Errorf("workload: background MsgBytes %d must be >= 1", c.MsgBytes)
	case c.Interval < 1:
		return fmt.Errorf("workload: background Interval %v must be positive", c.Interval)
	case c.FanOut < 0:
		return fmt.Errorf("workload: background FanOut %d must be >= 0", c.FanOut)
	}
	return nil
}

// PeakLoad returns the total message load among all background ranks per
// interval — the quantity of Table II — for a job occupying `nodes` nodes.
func (c BackgroundConfig) PeakLoad(nodes int) int64 {
	if nodes < 2 {
		return 0
	}
	switch c.Kind {
	case Bursty:
		fan := c.FanOut
		if fan == 0 || fan > nodes-1 {
			fan = nodes - 1
		}
		return int64(nodes) * int64(fan) * c.MsgBytes
	default:
		return int64(nodes) * c.MsgBytes
	}
}

// Background is a running synthetic job: all its nodes repeatedly issue
// messages at the configured interval until Stop is called.
type Background struct {
	f       *network.Fabric
	cfg     BackgroundConfig
	nodes   []topology.NodeID
	rng     *des.RNG
	stopped bool

	MessagesSent int64
	BytesSent    int64
}

// StartBackground launches the synthetic job on the given nodes. It panics
// on an invalid configuration; fewer than two nodes yield an inert job.
func StartBackground(f *network.Fabric, cfg BackgroundConfig, nodes []topology.NodeID, rng *des.RNG) *Background {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	b := &Background{f: f, cfg: cfg, nodes: nodes, rng: rng}
	if len(nodes) >= 2 {
		b.scheduleWave()
	}
	return b
}

// Stop ceases issuing new messages; in-flight traffic drains naturally.
func (b *Background) Stop() { b.stopped = true }

func (b *Background) scheduleWave() {
	b.f.Engine().Schedule(b.cfg.Interval, func() {
		if b.stopped {
			return
		}
		b.emitWave()
		b.scheduleWave()
	})
}

func (b *Background) emitWave() {
	n := len(b.nodes)
	switch b.cfg.Kind {
	case UniformRandom:
		// One message per node to a random peer, spread over the interval
		// so the offered load is smooth.
		for i, src := range b.nodes {
			j := b.rng.Intn(n - 1)
			if j >= i {
				j++
			}
			dst := b.nodes[j]
			offset := des.Time(b.rng.Int63n(int64(b.cfg.Interval)))
			src := src
			b.f.Engine().Schedule(offset, func() {
				if b.stopped {
					return
				}
				b.send(src, dst)
			})
		}
	case Bursty:
		// Every node addresses FanOut peers at once.
		fan := b.cfg.FanOut
		if fan == 0 || fan > n-1 {
			fan = n - 1
		}
		for i, src := range b.nodes {
			if fan == n-1 {
				for j, dst := range b.nodes {
					if j != i {
						b.send(src, dst)
					}
				}
				continue
			}
			for k := 0; k < fan; k++ {
				j := b.rng.Intn(n - 1)
				if j >= i {
					j++
				}
				b.send(src, b.nodes[j])
			}
		}
	}
}

func (b *Background) send(src, dst topology.NodeID) {
	b.MessagesSent++
	b.BytesSent += b.cfg.MsgBytes
	b.f.Send(src, dst, b.cfg.MsgBytes, nil, nil)
}
