package policytest

import (
	"errors"
	"fmt"
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

// Contract is the acceptance suite every routing.Policy implementation must
// pass — built-ins, the learning policy, and any out-of-tree policy written
// against the exported Chooser surface. It checks the contract stated on
// routing.Policy on small XC40 and Dragonfly+ machines, in both the dense
// and compact table regimes, healthy and degraded:
//
//   - validity: every emitted route passes routing.Validate, and on a
//     faulted fabric touches only live routers and links;
//   - typed failure: FaultRoute reports unroutable pairs as
//     routing.ErrUnreachable, never an untyped error or a panic;
//   - determinism: two choosers built from the same factory, seed, and
//     congestion oracle — fed the identical saturation-feedback sequence —
//     produce hop-identical routes and leave the RNG stream at the same
//     position.
func Contract(t *testing.T, factory routing.PolicyFactory) {
	machines := []struct {
		name string
		ic   topology.Interconnect
	}{
		{"mini", topotest.Mini(t)},
		{"dfplus-mini", topotest.PlusMini(t)},
	}
	for _, m := range machines {
		for _, compact := range []bool{false, true} {
			for _, frac := range []float64{0, 0.2} {
				regime := "dense"
				if compact {
					regime = "compact"
				}
				name := fmt.Sprintf("%s/%s/fault=%.2f", m.name, regime, frac)
				ic, cp, fr := m.ic, compact, frac
				t.Run(name, func(t *testing.T) {
					contractCell(t, ic, factory, cp, fr)
				})
			}
		}
	}
}

func contractCell(t *testing.T, ic topology.Interconnect, factory routing.PolicyFactory, compact bool, frac float64) {
	t.Helper()
	const seed = 23
	opts := routing.Options{Policy: factory, CompactTables: compact}
	var liveGlobal map[[2]topology.RouterID]bool
	if frac > 0 {
		set, err := faults.Resolve(&faults.Spec{GlobalFrac: frac, Seed: seed + 1}, ic)
		if err != nil {
			t.Fatalf("resolve faults: %v", err)
		}
		opts.Health = set
		liveGlobal = make(map[[2]topology.RouterID]bool)
		for _, c := range ic.GlobalConns() {
			if set.GlobalLinkUp(c.A, c.APort) {
				liveGlobal[[2]topology.RouterID{c.A, c.B}] = true
			}
			if set.GlobalLinkUp(c.B, c.BPort) {
				liveGlobal[[2]topology.RouterID{c.B, c.A}] = true
			}
		}
	}
	mk := func() *routing.Chooser {
		rng := des.NewRNG(seed, "policy-contract").Stream("route")
		return routing.NewChooserOpts(ic, routing.Minimal, rng, LoadOracle{Salt: 5}, opts)
	}
	// Two independent choosers from the same factory walk the same pair
	// sequence in lockstep; their digests must agree (the determinism rule).
	a, b := mk(), mk()
	fba, fbb := a.Feedback(), b.Feedback()
	da, db := NewDigest(), NewDigest()
	pr := des.NewRNG(seed, "policy-contract-pairs")
	n := ic.NumNodes()
	nr := ic.NumRouters()
	for i := 0; i < 512; i++ {
		src := topology.NodeID(pr.Intn(n))
		dst := topology.NodeID(pr.Intn(n))
		contractRoute(t, ic, a, da, src, dst, opts.Health, liveGlobal)
		contractRoute(t, ic, b, db, src, dst, opts.Health, liveGlobal)
		// Learning policies consume saturation feedback; feed both choosers
		// the identical deterministic sequence, mixing in local-link events
		// the Feedback contract says are ignorable.
		if fba != nil && i%3 == 0 {
			from := topology.RouterID(pr.Intn(nr))
			to := topology.RouterID(pr.Intn(nr))
			kind := routing.Global
			if i%6 == 0 {
				kind = routing.Local
			}
			fba.ObserveSaturation(from, to, kind)
			fbb.ObserveSaturation(from, to, kind)
		}
	}
	// Pin the RNG stream position on both sides: equal routes produced by a
	// different number of draws is still a determinism violation.
	ra, rb := a.RNG(), b.RNG()
	for i := 0; i < 4; i++ {
		da.I64(ra.Int63())
		db.I64(rb.Int63())
	}
	if da.Sum() != db.Sum() {
		t.Fatalf("policy %q is not deterministic: two identically seeded choosers diverged (digest %s vs %s)",
			factory().Name(), da.Sum(), db.Sum())
	}
}

// contractRoute routes one pair, enforces validity (and, degraded,
// live-equipment-only plus typed unreachability), and digests the outcome.
func contractRoute(t *testing.T, ic topology.Interconnect, ch *routing.Chooser, d *Digest,
	src, dst topology.NodeID, health topology.Health, liveGlobal map[[2]topology.RouterID]bool) {
	t.Helper()
	p, err := ch.TryRoute(src, dst)
	if err != nil {
		if health == nil {
			t.Fatalf("healthy fabric %d->%d: unexpected error: %v", src, dst, err)
		}
		if !errors.Is(err, routing.ErrUnreachable) {
			t.Fatalf("degraded fabric %d->%d: untyped failure: %v", src, dst, err)
		}
		d.Str("unreach")
		return
	}
	rs, rd := ic.RouterOfNode(src), ic.RouterOfNode(dst)
	if err := routing.Validate(ic, rs, rd, p); err != nil {
		t.Fatalf("%d->%d: invalid route: %v\npath: %+v", src, dst, err, p.Hops)
	}
	if health != nil {
		for _, h := range p.Hops {
			if !health.RouterUp(h.From) || !health.RouterUp(h.To) {
				t.Fatalf("%d->%d: hop %d->%d touches a failed router", src, dst, h.From, h.To)
			}
			switch h.Kind {
			case routing.Local:
				if !health.LocalLinkUp(h.From, h.To) {
					t.Fatalf("%d->%d: hop traverses failed local link %d-%d", src, dst, h.From, h.To)
				}
			case routing.Global:
				if !liveGlobal[[2]topology.RouterID{h.From, h.To}] {
					t.Fatalf("%d->%d: hop traverses dead global pair %d-%d", src, dst, h.From, h.To)
				}
			}
		}
	}
	d.Path(p)
	ch.Release(p)
}
