package policytest_test

import (
	"testing"

	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest/policytest"
)

// The built-in policies and the learning policy must all pass the Policy
// acceptance suite.

func TestContractMinimal(t *testing.T) {
	policytest.Contract(t, func() routing.Policy { return routing.BuiltinPolicy(routing.Minimal) })
}

func TestContractAdaptive(t *testing.T) {
	policytest.Contract(t, func() routing.Policy { return routing.BuiltinPolicy(routing.Adaptive) })
}

func TestContractQAdaptive(t *testing.T) {
	policytest.Contract(t, func() routing.Policy {
		return routing.NewQAdaptivePolicy(routing.QAdaptiveConfig{})
	})
}

// flipPolicy alternates between the chooser's minimal and Valiant builders
// for inter-group traffic. It is deliberately written against nothing but
// the exported Chooser surface (MinimalPath, ValiantPath, FaultMinimalPath,
// FaultValiantPath, GroupOf) — passing the contract proves the SPI is
// sufficient for an out-of-tree policy, not just for the built-ins that
// share the package.
type flipPolicy struct {
	c *routing.Chooser
	n int
}

func (p *flipPolicy) Name() string            { return "flip" }
func (p *flipPolicy) Bind(c *routing.Chooser) { p.c = c }

func (p *flipPolicy) Route(rs, rd topology.RouterID) routing.Path {
	p.n++
	if p.c.GroupOf(rs) == p.c.GroupOf(rd) || p.n%2 == 0 {
		return p.c.MinimalPath(rs, rd)
	}
	return p.c.ValiantPath(rs, rd)
}

func (p *flipPolicy) FaultRoute(rs, rd topology.RouterID) (routing.Path, error) {
	p.n++
	if p.c.GroupOf(rs) != p.c.GroupOf(rd) && p.n%2 == 1 {
		if v, ok := p.c.FaultValiantPath(rs, rd); ok {
			return v, nil
		}
	}
	return p.c.FaultMinimalPath(rs, rd)
}

func TestContractCustomPolicy(t *testing.T) {
	policytest.Contract(t, func() routing.Policy { return &flipPolicy{} })
}
