// Package policytest is the differential policy-equivalence harness: it
// reduces the observable behavior of a routing configuration — the exact
// hop sequences, the chooser's RNG stream position, and (for full runs)
// link statistics and simulation clocks — to a short digest that can be
// pinned in testdata and compared across refactors. The routing-policy SPI
// landed against digests generated from the pre-SPI chooser, so "built-in
// policies are byte-identical to the hard-coded mechanisms" is a checked
// property, not a code-review judgement.
//
// The package lives under topotest but is separate from it on purpose:
// package topotest imports only topology (so routing's own internal test
// files may import it), while the digest helpers here need routing, core,
// and faults. External test packages (topotest_test, routing_test) import
// policytest; internal ones must not.
package policytest

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// LoadOracle is a deterministic stand-in for fabric backlog: every directed
// router pair reports a fixed pseudo-random queue depth, so adaptive
// scoring exercises real (non-zero, non-uniform) comparisons without a
// simulation. Distinct salts give statistically unrelated load patterns.
type LoadOracle struct {
	Salt uint64
}

// OutputBacklog implements routing.Congestion.
func (o LoadOracle) OutputBacklog(from, to topology.RouterID) int64 {
	return int64((uint64(from)*2654435761 + uint64(to)*40503 + o.Salt*7919) % 9001)
}

// Digest accumulates values into an FNV-1a hash. Field order matters:
// digests are only comparable between identical write sequences.
type Digest struct {
	h   uint64
	buf [8]byte
}

// NewDigest returns an empty accumulator.
func NewDigest() *Digest {
	return &Digest{h: 14695981039346656037}
}

func (d *Digest) bytes(p []byte) {
	const prime = 1099511628211
	for _, b := range p {
		d.h ^= uint64(b)
		d.h *= prime
	}
}

// U64 mixes in an unsigned value.
func (d *Digest) U64(v uint64) {
	binary.LittleEndian.PutUint64(d.buf[:], v)
	d.bytes(d.buf[:])
}

// I64 mixes in a signed value.
func (d *Digest) I64(v int64) { d.U64(uint64(v)) }

// F64 mixes in a float bit pattern (so "byte-identical" means exactly
// that, not approximately-equal).
func (d *Digest) F64(v float64) { d.U64(math.Float64bits(v)) }

// Str mixes in a length-prefixed string.
func (d *Digest) Str(s string) {
	d.U64(uint64(len(s)))
	d.bytes([]byte(s))
}

// Bool mixes in a boolean.
func (d *Digest) Bool(b bool) {
	if b {
		d.U64(1)
	} else {
		d.U64(0)
	}
}

// Sum returns the digest as a fixed-width hex string.
func (d *Digest) Sum() string { return fmt.Sprintf("%016x", d.h) }

// Path mixes in one route: hop count then every hop's full tuple.
func (d *Digest) Path(p routing.Path) {
	d.I64(int64(len(p.Hops)))
	for _, h := range p.Hops {
		d.I64(int64(h.From))
		d.I64(int64(h.To))
		d.I64(int64(h.Kind))
		d.I64(int64(h.VC))
	}
}

// RouteSpec describes one chooser-level digest cell.
type RouteSpec struct {
	Mech    routing.Mechanism
	Opts    routing.Options // Health is set from Faults below, not here
	Seed    int64
	Pairs   int     // sampled (src, dst) node pairs; 0 means 2048
	Salt    uint64  // congestion oracle salt
	Faults  float64 // GlobalFrac of a seeded fault spec; 0 = healthy
	RNGName string  // chooser stream name; "" means the fabric's "route"
	// Policy, when non-nil, overrides Mech (see routing.Options.Policy).
	Policy routing.PolicyFactory
}

// RouteDigest builds a chooser exactly the way the fabric does (same
// stream derivation), routes Pairs sampled node pairs against a salted
// congestion oracle, and digests every hop tuple, every unreachability
// error, and finally the chooser RNG's post-run position (four probe
// draws) — so a refactor that reorders or changes the number of RNG
// consumptions fails even if it happens to produce the same routes.
func RouteDigest(tb testing.TB, ic topology.Interconnect, spec RouteSpec) string {
	tb.Helper()
	opts := spec.Opts
	if spec.Faults > 0 {
		fs := &faults.Spec{GlobalFrac: spec.Faults, Seed: spec.Seed + 1}
		set, err := faults.Resolve(fs, ic)
		if err != nil {
			tb.Fatalf("policytest: resolve faults: %v", err)
		}
		opts.Health = set
	}
	opts.Policy = spec.Policy
	root := des.NewRNG(spec.Seed, "policy-equiv")
	name := spec.RNGName
	if name == "" {
		name = "route"
	}
	rng := root.Stream(name)
	ch := routing.NewChooserOpts(ic, spec.Mech, rng, LoadOracle{Salt: spec.Salt}, opts)

	pairs := spec.Pairs
	if pairs == 0 {
		pairs = 2048
	}
	pr := des.NewRNG(spec.Seed, "policy-equiv-pairs")
	d := NewDigest()
	n := ic.NumNodes()
	for i := 0; i < pairs; i++ {
		src := topology.NodeID(pr.Intn(n))
		dst := topology.NodeID(pr.Intn(n))
		p, err := ch.TryRoute(src, dst)
		if err != nil {
			d.Str("unreach")
			d.Str(err.Error())
			continue
		}
		d.Path(p)
		ch.Release(p)
	}
	// Pin the stream position: identical routes with a different number of
	// underlying draws must not pass.
	for i := 0; i < 4; i++ {
		d.I64(rng.Int63())
	}
	return d.Sum()
}

// SimDigest runs one full simulation cell and digests everything the
// Result exposes that a routing change could perturb: the simulated clock,
// the event count, per-rank communication times and hop averages, every
// link's byte/packet/saturation counters, and the drop/partition
// accounting. Two configs with equal SimDigests behaved identically at
// fabric granularity.
func SimDigest(tb testing.TB, cfg core.Config) string {
	tb.Helper()
	res, err := core.Run(cfg)
	if err != nil {
		tb.Fatalf("policytest: run %s: %v", cfg.Name(), err)
	}
	return ResultDigest(res)
}

// ResultDigest digests a completed Result (see SimDigest).
func ResultDigest(res *core.Result) string {
	d := NewDigest()
	d.U64(uint64(res.Duration))
	d.U64(res.Events)
	d.Bool(res.Completed)
	d.I64(int64(len(res.CommTimes)))
	for _, t := range res.CommTimes {
		d.I64(int64(t))
	}
	for _, h := range res.AvgHops {
		d.F64(h)
	}
	d.I64(int64(len(res.Links)))
	for _, l := range res.Links {
		d.I64(int64(l.Kind))
		d.I64(int64(l.From))
		d.I64(int64(l.To))
		d.I64(int64(l.Node))
		d.Bool(l.Eject)
		d.I64(l.Bytes)
		d.I64(l.Packets)
		d.I64(int64(l.SatTime))
	}
	d.I64(res.DroppedPackets)
	d.I64(res.DroppedBytes)
	if res.RouteErr != nil {
		d.Str(res.RouteErr.Error())
	}
	return d.Sum()
}
