package topotest

import (
	"errors"
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// liveGlobal indexes the machine's global cables by directed router pair, so
// a route's global hop can be checked against the health view without port
// information on the hop itself: the hop is legitimate only if at least one
// parallel cable between the pair is up in that direction.
type liveGlobal map[[2]topology.RouterID][]int

func indexGlobals(ic topology.Interconnect) liveGlobal {
	idx := liveGlobal{}
	for _, c := range ic.GlobalConns() {
		idx[[2]topology.RouterID{c.A, c.B}] = append(idx[[2]topology.RouterID{c.A, c.B}], c.APort)
		idx[[2]topology.RouterID{c.B, c.A}] = append(idx[[2]topology.RouterID{c.B, c.A}], c.BPort)
	}
	return idx
}

func (lg liveGlobal) anyUp(set *faults.Set, from, to topology.RouterID) bool {
	for _, port := range lg[[2]topology.RouterID{from, to}] {
		if set.GlobalLinkUp(from, port) {
			return true
		}
	}
	return false
}

// TestFaultRoutesAvoidDeadEquipment: on every registered machine preset, with
// a seeded random fault draw degrading routers and both link classes, every
// route the fault-aware chooser produces (both mechanisms) must pass the
// physical/VC validator — VC classes stay monotone, the deadlock-freedom
// witness — and never touch a failed router, local link, or global cable;
// every routing failure must be the typed ErrUnreachable.
func TestFaultRoutesAvoidDeadEquipment(t *testing.T) {
	Each(t, func(t *testing.T, m topology.Machine, ic topology.Interconnect) {
		set, err := faults.Resolve(&faults.Spec{GlobalFrac: 0.15, LocalFrac: 0.05, Routers: 2, Seed: 3}, ic)
		if err != nil {
			t.Fatal(err)
		}
		globals := indexGlobals(ic)
		for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
			rng := des.NewRNG(1, "topotest/faults")
			ch := routing.NewChooserOpts(ic, mech, rng.Stream("route"), nil, routing.Options{Health: set})
			reached := 0
			for i := 0; i < 150; i++ {
				src := topology.NodeID(rng.Intn(ic.NumNodes()))
				dst := topology.NodeID(rng.Intn(ic.NumNodes()))
				if src == dst {
					continue
				}
				p, err := ch.TryRoute(src, dst)
				if err != nil {
					if !errors.Is(err, routing.ErrUnreachable) {
						t.Fatalf("%v %d->%d: untyped routing failure: %v", mech, src, dst, err)
					}
					continue
				}
				reached++
				rs, rd := ic.RouterOfNode(src), ic.RouterOfNode(dst)
				if err := routing.Validate(ic, rs, rd, p); err != nil {
					t.Fatalf("%v %d->%d: invalid route: %v\npath: %+v", mech, src, dst, err, p.Hops)
				}
				if g := p.GlobalHops(); g > routing.NumGlobalVC {
					t.Fatalf("%v %d->%d: %d global hops exceed the VC budget %d", mech, src, dst, g, routing.NumGlobalVC)
				}
				for _, h := range p.Hops {
					if !set.RouterUp(h.From) || !set.RouterUp(h.To) {
						t.Fatalf("%v %d->%d: hop %d->%d touches a failed router", mech, src, dst, h.From, h.To)
					}
					switch h.Kind {
					case routing.Local:
						if !set.LocalLinkUp(h.From, h.To) {
							t.Fatalf("%v %d->%d: hop traverses failed local link %d-%d", mech, src, dst, h.From, h.To)
						}
					case routing.Global:
						if !globals.anyUp(set, h.From, h.To) {
							t.Fatalf("%v %d->%d: hop traverses dead global pair %d-%d", mech, src, dst, h.From, h.To)
						}
					}
				}
				ch.Release(p)
			}
			if reached == 0 {
				t.Fatalf("%v: the 15%%-degraded %s machine routed no sampled pair at all", mech, ic.Name())
			}
		}
	})
}

// TestPartitionedGroupUnreachable: cutting every global cable of group 0
// partitions it from the rest of the machine on every preset. Cross-partition
// routes must fail with ErrUnreachable in both directions, while intra-group
// traffic inside the severed group still routes.
func TestPartitionedGroupUnreachable(t *testing.T) {
	Each(t, func(t *testing.T, m topology.Machine, ic topology.Interconnect) {
		if ic.NumGroups() < 2 {
			t.Skip("single-group machine cannot partition")
		}
		spec := &faults.Spec{}
		for _, c := range ic.GlobalConns() {
			if ic.GroupOfRouter(c.A) == 0 || ic.GroupOfRouter(c.B) == 0 {
				spec.FailLinks = append(spec.FailLinks, [2]topology.RouterID{c.A, c.B})
			}
		}
		set, err := faults.Resolve(spec, ic)
		if err != nil {
			t.Fatal(err)
		}
		// One node inside group 0, one in group 0 on a different router (when
		// the group has several routers), one outside.
		var inside, inside2, outside topology.NodeID = -1, -1, -1
		for n := 0; n < ic.NumNodes(); n++ {
			id := topology.NodeID(n)
			r := ic.RouterOfNode(id)
			if ic.GroupOfRouter(r) == 0 {
				if inside < 0 {
					inside = id
				} else if inside2 < 0 && ic.RouterOfNode(inside) != r {
					inside2 = id
				}
			} else if outside < 0 {
				outside = id
			}
		}
		if inside < 0 || outside < 0 {
			t.Fatalf("machine %s has no node split across groups", ic.Name())
		}
		for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
			rng := des.NewRNG(1, "topotest/partition")
			ch := routing.NewChooserOpts(ic, mech, rng.Stream("route"), nil, routing.Options{Health: set})
			for _, dir := range [][2]topology.NodeID{{inside, outside}, {outside, inside}} {
				_, err := ch.TryRoute(dir[0], dir[1])
				if err == nil {
					t.Fatalf("%v: route %d->%d crossed a severed partition", mech, dir[0], dir[1])
				}
				if !errors.Is(err, routing.ErrUnreachable) {
					t.Fatalf("%v: partition failure is not ErrUnreachable: %v", mech, err)
				}
				var ue *routing.UnreachableError
				if !errors.As(err, &ue) {
					t.Fatalf("%v: partition failure carries no router pair: %v", mech, err)
				}
			}
			if inside2 >= 0 {
				p, err := ch.TryRoute(inside, inside2)
				if err != nil {
					t.Fatalf("%v: intra-group route inside the severed group failed: %v", mech, err)
				}
				if err := routing.Validate(ic, ic.RouterOfNode(inside), ic.RouterOfNode(inside2), p); err != nil {
					t.Fatalf("%v: intra-group route invalid: %v", mech, err)
				}
			}
		}
	})
}

// TestDynamicRepairRestoresRoutes: failing a router and repairing it (the
// dynamic-event path: mutate the set, rebuild the chooser's health tables)
// returns routing to it on every small preset.
func TestDynamicRepairRestoresRoutes(t *testing.T) {
	EachSmall(t, func(t *testing.T, m topology.Machine, ic topology.Interconnect) {
		set, err := faults.Resolve(&faults.Spec{}, ic)
		if err != nil {
			t.Fatal(err)
		}
		var victim topology.RouterID = -1
		var node topology.NodeID
		for n := 0; n < ic.NumNodes(); n++ {
			if r := ic.RouterOfNode(topology.NodeID(n)); victim < 0 {
				victim, node = r, topology.NodeID(n)
			}
		}
		var far topology.NodeID = -1
		for n := 0; n < ic.NumNodes(); n++ {
			if ic.RouterOfNode(topology.NodeID(n)) != victim {
				far = topology.NodeID(n)
				break
			}
		}
		if far < 0 {
			t.Skip("single-router machine")
		}
		rng := des.NewRNG(1, "topotest/repair")
		ch := routing.NewChooserOpts(ic, routing.Minimal, rng.Stream("route"), nil, routing.Options{Health: set})
		if _, err := ch.TryRoute(far, node); err != nil {
			t.Fatalf("healthy route failed: %v", err)
		}
		set.FailRouter(victim)
		ch.RebuildHealth()
		if _, err := ch.TryRoute(far, node); !errors.Is(err, routing.ErrUnreachable) {
			t.Fatalf("route to a failed router did not fail typed: %v", err)
		}
		set.RepairRouter(victim)
		ch.RebuildHealth()
		p, err := ch.TryRoute(far, node)
		if err != nil {
			t.Fatalf("repair did not restore routing: %v", err)
		}
		if err := routing.Validate(ic, ic.RouterOfNode(far), victim, p); err != nil {
			t.Fatalf("post-repair route invalid: %v", err)
		}
	})
}
