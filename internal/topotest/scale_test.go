package topotest_test

// Property tests on synthesized >=5k-router machines — an order of magnitude
// past topology.DenseTableLimit, so they exercise the shared local template,
// the lazy gateway shards, and the path memo that the preset-sized suites
// never touch. Everything here samples rather than sweeps: the whole file
// must stay comfortably under ten seconds so it runs in the ordinary test
// tier, not a nightly job.

import (
	"errors"
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

const scaleTestRouters = 5000

// eachScale runs f per synthesized big machine (one per family).
func eachScale(t *testing.T, f func(t *testing.T, ic topology.Interconnect)) {
	for _, family := range []string{"df", "dfplus"} {
		family := family
		t.Run(family, func(t *testing.T) {
			m, err := topology.ScaleConfig(family, scaleTestRouters)
			if err != nil {
				t.Fatal(err)
			}
			ic, err := m.Build()
			if err != nil {
				t.Fatal(err)
			}
			if ic.NumRouters() < scaleTestRouters {
				t.Fatalf("shape has %d routers, want >= %d", ic.NumRouters(), scaleTestRouters)
			}
			f(t, ic)
		})
	}
}

// TestScaleSampledRoutesValid: on a >=5k-router machine every sampled route,
// minimal and adaptive, passes the physical/VC validator and lands at the
// destination — through the compressed tables the machine's size forces on.
func TestScaleSampledRoutesValid(t *testing.T) {
	eachScale(t, func(t *testing.T, ic topology.Interconnect) {
		for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
			rng := des.NewRNG(11, "scale-routes")
			ch := routing.NewChooserOpts(ic, mech, rng.Stream("route"), nil, routing.Options{})
			for i := 0; i < 400; i++ {
				src := topology.NodeID(rng.Intn(ic.NumNodes()))
				dst := topology.NodeID(rng.Intn(ic.NumNodes()))
				p, err := ch.TryRoute(src, dst)
				if err != nil {
					t.Fatalf("%v route %d->%d: %v", mech, src, dst, err)
				}
				if err := routing.Validate(ic, ic.RouterOfNode(src), ic.RouterOfNode(dst), p); err != nil {
					t.Fatalf("%v route %d->%d invalid: %v", mech, src, dst, err)
				}
				ch.Release(p)
			}
		}
	})
}

// TestScaleGatewayLivenessUnderFaults: with a fifth of the global links dead,
// sampled routes on the big machine must either be fully live (no dead
// router, no dead local link, validated) or fail with the typed
// ErrUnreachable — and at this fault rate the machine must remain almost
// entirely connected, so reachability is the common case.
func TestScaleGatewayLivenessUnderFaults(t *testing.T) {
	eachScale(t, func(t *testing.T, ic topology.Interconnect) {
		set, err := faults.Resolve(&faults.Spec{GlobalFrac: 0.2, LocalFrac: 0.02, Seed: 13}, ic)
		if err != nil {
			t.Fatal(err)
		}
		rng := des.NewRNG(17, "scale-faults")
		ch := routing.NewChooserOpts(ic, routing.Adaptive, rng.Stream("route"), nil, routing.Options{Health: set})
		reach, unreach := 0, 0
		for i := 0; i < 300; i++ {
			src := topology.NodeID(rng.Intn(ic.NumNodes()))
			dst := topology.NodeID(rng.Intn(ic.NumNodes()))
			p, err := ch.TryRoute(src, dst)
			if err != nil {
				if !errors.Is(err, routing.ErrUnreachable) {
					t.Fatalf("route %d->%d: untyped failure: %v", src, dst, err)
				}
				unreach++
				continue
			}
			if err := routing.Validate(ic, ic.RouterOfNode(src), ic.RouterOfNode(dst), p); err != nil {
				t.Fatalf("route %d->%d invalid: %v", src, dst, err)
			}
			for _, h := range p.Hops {
				if !set.RouterUp(h.From) || !set.RouterUp(h.To) {
					t.Fatalf("route %d->%d traverses failed router (%d->%d)", src, dst, h.From, h.To)
				}
				if h.Kind == routing.Local && !set.LocalLinkUp(h.From, h.To) {
					t.Fatalf("route %d->%d traverses failed local link %d-%d", src, dst, h.From, h.To)
				}
			}
			reach++
		}
		if reach < unreach {
			t.Fatalf("only %d/%d sampled pairs reachable at 20%% global faults — machine effectively partitioned", reach, reach+unreach)
		}
	})
}

// TestScaleSymmetryInvariants checks the structural regularities the
// compressed representations depend on: equal-population groups, the shared
// local template reproducing LocalNextHop everywhere (sampled), and every
// sampled group pair owning at least one gateway in each direction (the
// round-robin global wiring's all-pairs guarantee).
func TestScaleSymmetryInvariants(t *testing.T) {
	eachScale(t, func(t *testing.T, ic topology.Interconnect) {
		nG, nR := ic.NumGroups(), ic.NumRouters()
		if nR%nG != 0 {
			t.Fatalf("%d routers do not divide into %d equal groups", nR, nG)
		}
		rpg := nR / nG
		for r := 0; r < nR; r += rpg * 37 / 11 { // stride through groups
			if got := ic.GroupOfRouter(topology.RouterID(r)); got != r/rpg {
				t.Fatalf("router %d: group %d, want %d (groups not router-major uniform)", r, got, r/rpg)
			}
		}

		tmpl, ok := topology.NewLocalTemplate(ic)
		if !ok {
			t.Fatal("synthesized machine is not group-isomorphic — the scale fast path would fall back to dense tables")
		}
		rng := des.NewRNG(19, "scale-sym")
		for i := 0; i < 2000; i++ {
			g := rng.Intn(nG)
			base := g * rpg
			cur := topology.RouterID(base + rng.Intn(rpg))
			dst := topology.RouterID(base + rng.Intn(rpg))
			want := ic.LocalNextHop(cur, dst)
			got := topology.RouterID(base) + topology.RouterID(tmpl.Next[(int(cur)-base)*rpg+(int(dst)-base)])
			if got != want {
				t.Fatalf("group %d: template next-hop %d->%d = %d, want %d", g, cur, dst, got, want)
			}
		}

		for i := 0; i < 200; i++ {
			a, b := rng.Intn(nG), rng.Intn(nG)
			if a == b {
				continue
			}
			if len(ic.Gateways(a, b)) == 0 || len(ic.Gateways(b, a)) == 0 {
				t.Fatalf("group pair (%d,%d) has no gateway in one direction — global wiring misses pairs", a, b)
			}
		}
	})
}
