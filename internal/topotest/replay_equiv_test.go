// Differential replay-equivalence suite: the digests in
// testdata/replay_equivalence.json were generated from the fence-based flat
// replayer (the per-rank op-list walker that predated the dependency-graph
// IR), and the graph executor that replaced it must reproduce them bit for
// bit — simulation clocks, event counts, per-rank communication times, link
// statistics, and drop accounting, across machine x application x placement
// x dense/compact table cells under adaptive routing (the RNG-consuming
// mechanism, so a divergence in route-draw order fails too). Refresh (only
// when a behavior change is intended and understood) with:
//
//	UPDATE_EQUIV=1 go test ./internal/topotest -run TestReplayEquivalence
package topotest_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest/policytest"
	"dragonfly/internal/trace"
)

const replayEquivFile = "testdata/replay_equivalence.json"

// replayEquivSeed fixes every stream in the suite; changing it invalidates
// the committed digests.
const replayEquivSeed = 23

// replayApps builds the three miniapps at suite scale: small enough that the
// whole grid runs in seconds, large enough that every op kind, the fence
// cadence of each app, and multi-phase matching are exercised.
func replayApps(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	cr, err := trace.CR(trace.CRConfig{Ranks: 24, MessageBytes: 12 * trace.KB})
	if err != nil {
		t.Fatalf("CR: %v", err)
	}
	fb, err := trace.FB(trace.FBConfig{
		X: 3, Y: 3, Z: 3, Iterations: 2,
		MinBytes: 4 * trace.KB, MaxBytes: 32 * trace.KB,
		FarPartners: 1, FarFraction: 0.2, Seed: 1,
	})
	if err != nil {
		t.Fatalf("FB: %v", err)
	}
	amg, err := trace.AMG(trace.AMGConfig{X: 3, Y: 3, Z: 3, Cycles: 2, Levels: 3, PeakBytes: 12 * trace.KB})
	if err != nil {
		t.Fatalf("AMG: %v", err)
	}
	return map[string]*trace.Trace{"CR": cr, "FB": fb, "AMG": amg}
}

// replayCells enumerates the differential grid: machine x app x placement x
// dense/compact, each a full simulation under adaptive routing whose Result
// is digested whole.
func replayCells(t *testing.T) map[string]func(t *testing.T) string {
	t.Helper()
	apps := replayApps(t)
	cells := map[string]func(t *testing.T) string{}
	for _, preset := range []string{"mini", "dfplus-mini"} {
		for _, app := range []string{"CR", "FB", "AMG"} {
			for _, place := range []placement.Policy{placement.Contiguous, placement.RandomNode} {
				for _, compact := range []bool{false, true} {
					preset, app, place, compact := preset, app, place, compact
					name := fmt.Sprintf("replay/%s/%s/%s/%s", preset, app, place, tableName(compact))
					cells[name] = func(t *testing.T) string {
						m, err := topology.Preset(preset)
						if err != nil {
							t.Fatalf("preset %s: %v", preset, err)
						}
						cfg := core.Config{
							Topology:       m,
							Params:         network.DefaultParams(),
							Placement:      place,
							Routing:        routing.Adaptive,
							Trace:          apps[app],
							Seed:           replayEquivSeed,
							WatchdogEvents: 10_000_000_000,
						}
						cfg.Params.Route.CompactTables = compact
						return policytest.SimDigest(t, cfg)
					}
				}
			}
		}
	}
	return cells
}

// TestReplayEquivalence compares every cell's digest against the committed
// pre-graph-executor snapshot.
func TestReplayEquivalence(t *testing.T) {
	cells := replayCells(t)

	if os.Getenv("UPDATE_EQUIV") != "" {
		got := map[string]string{}
		for name, f := range cells {
			got[name] = f(t)
		}
		writeReplayEquiv(t, got)
		t.Logf("replay equivalence: wrote %d cell digests to %s", len(got), replayEquivFile)
		return
	}

	want := readReplayEquiv(t)
	names := make([]string, 0, len(cells))
	for name := range cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: no committed digest (run UPDATE_EQUIV=1 and review the diff)", name)
		}
	}
	for name := range want {
		if _, ok := cells[name]; !ok {
			t.Errorf("%s: committed digest has no matching cell (stale %s?)", name, replayEquivFile)
		}
	}
	for _, name := range names {
		name := name
		f := cells[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, ok := want[name]
			if !ok {
				t.Skip("no committed digest")
			}
			if got := f(t); got != w {
				t.Errorf("digest %s, want %s — behavior diverged from the fence-based replayer", got, w)
			}
		})
	}
}

func readReplayEquiv(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(replayEquivFile)
	if err != nil {
		t.Fatalf("read %s (generate with UPDATE_EQUIV=1): %v", replayEquivFile, err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", replayEquivFile, err)
	}
	return want
}

func writeReplayEquiv(t *testing.T, digests map[string]string) {
	t.Helper()
	data, err := json.MarshalIndent(digests, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(replayEquivFile, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", replayEquivFile, err)
	}
}
