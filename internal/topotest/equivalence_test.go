// Differential policy-equivalence suite: the digests in
// testdata/equivalence.json were generated from the pre-SPI chooser (the
// hard-coded minimal/adaptive switch), and every refactor since must
// reproduce them bit for bit — routes, unreachability errors, RNG stream
// positions, link statistics, and simulation clocks, across both table
// regimes and healthy/faulted fabrics. Refresh (only when a behavior
// change is intended and understood) with:
//
//	UPDATE_EQUIV=1 go test ./internal/topotest -run TestPolicyEquivalence
//
// This file is an external test package on purpose: package topotest must
// keep importing only topology (routing's internal tests import it), so
// the harness — which needs routing, core, and faults — lives out here and
// in internal/topotest/policytest.
package topotest_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/faults"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest/policytest"
	"dragonfly/internal/trace"
)

const equivFile = "testdata/equivalence.json"

// equivSeed fixes every stream in the suite; changing it invalidates the
// committed digests.
const equivSeed = 11

func tableName(compact bool) string {
	if compact {
		return "compact"
	}
	return "dense"
}

// routeCells enumerates the chooser-level grid: preset x mechanism x
// healthy/faulted x dense/compact, plus the gateway-policy ablations the
// SPI also absorbed.
func routeCells() map[string]func(t *testing.T) string {
	cells := map[string]func(t *testing.T) string{}
	for _, preset := range []string{"mini", "dfplus-mini"} {
		for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
			for _, frac := range []float64{0, 0.15} {
				for _, compact := range []bool{false, true} {
					preset, mech, frac, compact := preset, mech, frac, compact
					name := fmt.Sprintf("route/%s/%s/fault=%.2f/%s",
						preset, mech, frac, tableName(compact))
					cells[name] = func(t *testing.T) string {
						ic := buildPreset(t, preset)
						return policytest.RouteDigest(t, ic, policytest.RouteSpec{
							Mech:   mech,
							Opts:   routing.Options{CompactTables: compact},
							Seed:   equivSeed,
							Salt:   3,
							Faults: frac,
						})
					}
				}
			}
		}
	}
	for _, gw := range []routing.GatewayPolicy{routing.GatewayNearest, routing.GatewayRandom} {
		gw := gw
		name := fmt.Sprintf("route/mini/min/gateway=%d/dense", gw)
		cells[name] = func(t *testing.T) string {
			ic := buildPreset(t, "mini")
			return policytest.RouteDigest(t, ic, policytest.RouteSpec{
				Mech: routing.Minimal,
				Opts: routing.Options{Gateway: gw},
				Seed: equivSeed,
				Salt: 3,
			})
		}
	}
	return cells
}

// simCells enumerates full-simulation cells: preset x placement x
// mechanism x healthy/faulted x dense/compact, each a small crystal-router
// replay whose Result (clocks, events, comm times, link stats, drops) is
// digested whole.
func simCells() map[string]func(t *testing.T) string {
	cells := map[string]func(t *testing.T) string{}
	for _, preset := range []string{"mini", "dfplus-mini"} {
		for _, place := range []placement.Policy{placement.Contiguous, placement.RandomNode} {
			for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
				for _, frac := range []float64{0, 0.15} {
					for _, compact := range []bool{false, true} {
						preset, place, mech, frac, compact := preset, place, mech, frac, compact
						name := fmt.Sprintf("sim/%s/%s-%s/fault=%.2f/%s",
							preset, place, mech, frac, tableName(compact))
						cells[name] = func(t *testing.T) string {
							return policytest.SimDigest(t, simConfig(t, preset, place, mech, frac, compact))
						}
					}
				}
			}
		}
	}
	return cells
}

func buildPreset(t *testing.T, preset string) topology.Interconnect {
	t.Helper()
	m, err := topology.Preset(preset)
	if err != nil {
		t.Fatalf("preset %s: %v", preset, err)
	}
	ic, err := m.Build()
	if err != nil {
		t.Fatalf("build %s: %v", preset, err)
	}
	return ic
}

func simConfig(t *testing.T, preset string, place placement.Policy, mech routing.Mechanism, frac float64, compact bool) core.Config {
	t.Helper()
	m, err := topology.Preset(preset)
	if err != nil {
		t.Fatalf("preset %s: %v", preset, err)
	}
	tr, err := trace.CR(trace.CRConfig{Ranks: 16, MessageBytes: 8 * trace.KB})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	cfg := core.Config{
		Topology:       m,
		Params:         network.DefaultParams(),
		Placement:      place,
		Routing:        mech,
		Trace:          tr,
		Seed:           equivSeed,
		WatchdogEvents: 10_000_000_000,
	}
	cfg.Params.Route.CompactTables = compact
	if frac > 0 {
		cfg.Faults = &faults.Spec{GlobalFrac: frac, Seed: equivSeed + 1}
	}
	return cfg
}

// TestPolicyEquivalence compares every cell's digest against the committed
// pre-SPI snapshot.
func TestPolicyEquivalence(t *testing.T) {
	cells := routeCells()
	for name, f := range simCells() {
		cells[name] = f
	}

	if os.Getenv("UPDATE_EQUIV") != "" {
		got := map[string]string{}
		for name, f := range cells {
			got[name] = f(t)
		}
		writeEquiv(t, got)
		t.Logf("equivalence: wrote %d cell digests to %s", len(got), equivFile)
		return
	}

	want := readEquiv(t)
	names := make([]string, 0, len(cells))
	for name := range cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: no committed digest (run UPDATE_EQUIV=1 and review the diff)", name)
		}
	}
	for name := range want {
		if _, ok := cells[name]; !ok {
			t.Errorf("%s: committed digest has no matching cell (stale %s?)", name, equivFile)
		}
	}
	for _, name := range names {
		name := name
		f := cells[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, ok := want[name]
			if !ok {
				t.Skip("no committed digest")
			}
			if got := f(t); got != w {
				t.Errorf("digest %s, want %s — behavior diverged from the pre-SPI chooser", got, w)
			}
		})
	}
}

func readEquiv(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(equivFile)
	if err != nil {
		t.Fatalf("read %s (generate with UPDATE_EQUIV=1): %v", equivFile, err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", equivFile, err)
	}
	return want
}

func writeEquiv(t *testing.T, digests map[string]string) {
	t.Helper()
	data, err := json.MarshalIndent(digests, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(equivFile), 0o755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := os.WriteFile(equivFile, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", equivFile, err)
	}
}
