package topotest_test

import (
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
	"dragonfly/internal/trace"
)

// saltCong is a deterministic pseudo-random congestion oracle: it gives the
// adaptive policy non-trivial, reproducible backlog readings so the property
// tests exercise the Valiant and misroute branches on every machine, not
// just minimal paths.
type saltCong struct{ salt int64 }

func (c saltCong) OutputBacklog(from, to topology.RouterID) int64 {
	h := uint64(c.salt)*0x9e3779b97f4a7c15 + uint64(from)*0xbf58476d1ce4e5b9 + uint64(to)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 27
	return int64(h % (1 << 20))
}

// TestRouteValidEveryMachine: on every registered machine, both mechanisms
// route randomly sampled node pairs over physical links with contiguous
// hops, monotone VC classes (the deadlock-freedom witness), bounded length,
// and within the 2-global-hop VC budget. This is the SPI's core routing
// contract: any new Interconnect must pass unchanged.
func TestRouteValidEveryMachine(t *testing.T) {
	topotest.Each(t, func(t *testing.T, m topology.Machine, ic topology.Interconnect) {
		for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
			mech := mech
			t.Run(mech.String(), func(t *testing.T) {
				rng := des.NewRNG(7, "topotest").Stream("route")
				ch := routing.NewChooser(ic, mech, rng.Stream("chooser"), saltCong{salt: 11})
				n := ic.NumNodes()
				for i := 0; i < 400; i++ {
					src := topology.NodeID(rng.Intn(n))
					dst := topology.NodeID(rng.Intn(n))
					if src == dst {
						dst = topology.NodeID((int(dst) + 1) % n)
					}
					p := ch.Route(src, dst)
					rs, rd := ic.RouterOfNode(src), ic.RouterOfNode(dst)
					if err := routing.Validate(ic, rs, rd, p); err != nil {
						t.Fatalf("%s %v %d->%d: invalid route: %v\npath: %+v",
							ic.Name(), mech, src, dst, err, p.Hops)
					}
					// Worst case is Valiant through a third group; anything
					// longer means the builder wandered.
					if len(p.Hops) > 10 {
						t.Fatalf("route %d->%d has %d hops: %+v", src, dst, len(p.Hops), p.Hops)
					}
					if g := p.GlobalHops(); g > routing.NumGlobalVC {
						t.Fatalf("route %d->%d crosses %d global links (VC classes allow %d)",
							src, dst, g, routing.NumGlobalVC)
					}
				}
			})
		}
	})
}

// TestPlacementPartitionsEveryMachine: each of the five policies yields
// distinct in-range nodes on every machine, with Remaining the exact
// complement — the contract the background-traffic carve-out relies on.
func TestPlacementPartitionsEveryMachine(t *testing.T) {
	topotest.Each(t, func(t *testing.T, m topology.Machine, ic topology.Interconnect) {
		rng := des.NewRNG(3, "topotest").Stream("placement")
		size := ic.NumNodes() / 3
		if size < 1 {
			size = 1
		}
		for _, pol := range placement.All() {
			nodes, err := placement.Allocate(ic, pol, size, rng)
			if err != nil {
				t.Fatalf("%s: Allocate(%v, %d): %v", ic.Name(), pol, size, err)
			}
			if len(nodes) != size {
				t.Fatalf("%s: Allocate(%v, %d) returned %d nodes", ic.Name(), pol, size, len(nodes))
			}
			seen := make(map[topology.NodeID]bool, size)
			for _, nd := range nodes {
				if int(nd) < 0 || int(nd) >= ic.NumNodes() {
					t.Fatalf("%s: %v allocated out-of-range node %d", ic.Name(), pol, nd)
				}
				if seen[nd] {
					t.Fatalf("%s: %v allocated node %d twice", ic.Name(), pol, nd)
				}
				seen[nd] = true
			}
			rest := placement.Remaining(ic, nodes)
			if len(rest)+len(nodes) != ic.NumNodes() {
				t.Fatalf("%s: %v: %d allocated + %d remaining != %d nodes",
					ic.Name(), pol, len(nodes), len(rest), ic.NumNodes())
			}
			for _, nd := range rest {
				if seen[nd] {
					t.Fatalf("%s: %v: node %d both allocated and remaining", ic.Name(), pol, nd)
				}
			}
		}
	})
}

// TestAuditCleanEveryMachine replays a small crystal-router job on every
// registered machine under both mechanisms with the runtime invariant
// auditor attached: credit conservation, byte/packet conservation, VC-class
// monotonicity, time monotonicity, and per-NIC FIFO injection must hold on
// every event, and the run must complete. core.Run fails on any violation.
func TestAuditCleanEveryMachine(t *testing.T) {
	tr, err := trace.CR(trace.CRConfig{Ranks: 16, MessageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	topotest.Each(t, func(t *testing.T, m topology.Machine, ic topology.Interconnect) {
		for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
			res, err := core.Run(core.Config{
				Topology:  m,
				Params:    network.DefaultParams(),
				Placement: placement.RandomNode,
				Routing:   mech,
				Trace:     tr,
				Seed:      5,
				Audit:     true,
			})
			if err != nil {
				t.Fatalf("%s %v: %v", m.Label(), mech, err)
			}
			if !res.Completed {
				t.Fatalf("%s %v: run did not complete", m.Label(), mech)
			}
			if res.Audit == nil || len(res.Audit.Violations) != 0 {
				t.Fatalf("%s %v: audit summary missing or dirty: %+v", m.Label(), mech, res.Audit)
			}
		}
	})
}
