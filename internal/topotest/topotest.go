// Package topotest provides the shared machine constructors the simulator's
// test suites build on, replacing the per-package theta()/MustNew(Mini())
// boilerplate, plus Each — an iterator over every registered machine preset
// for cross-topology property tests. It imports only package topology, so
// every layer's tests (routing, placement, network, ...) can use it without
// import cycles.
package topotest

import (
	"testing"

	"dragonfly/internal/topology"
)

// Theta returns the paper's wired XC40 machine (9 groups x 6x16 x 4 nodes).
func Theta(tb testing.TB) *topology.Dragonfly {
	tb.Helper()
	return topology.MustNew(topology.Theta())
}

// Mini returns the small wired XC40 machine used by fast tests.
func Mini(tb testing.TB) *topology.Dragonfly {
	tb.Helper()
	return topology.MustNew(topology.Mini())
}

// Plus returns the wired 1296-node Dragonfly+ machine.
func Plus(tb testing.TB) *topology.DragonflyPlus {
	tb.Helper()
	return mustPlus(tb, topology.Plus())
}

// PlusMini returns the small wired Dragonfly+ machine used by fast tests.
func PlusMini(tb testing.TB) *topology.DragonflyPlus {
	tb.Helper()
	return mustPlus(tb, topology.PlusMini())
}

func mustPlus(tb testing.TB, cfg topology.PlusConfig) *topology.DragonflyPlus {
	tb.Helper()
	t, err := topology.NewPlus(cfg)
	if err != nil {
		tb.Fatalf("topotest: %v", err)
	}
	return t
}

// Each runs f as a subtest per registered machine preset (theta, mini,
// dfplus, dfplus-mini), building the machine fresh for each. Properties
// asserted under Each hold for every interconnect the simulator ships.
func Each(t *testing.T, f func(t *testing.T, m topology.Machine, ic topology.Interconnect)) {
	for _, name := range topology.PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := topology.Preset(name)
			if err != nil {
				t.Fatalf("topotest: %v", err)
			}
			ic, err := m.Build()
			if err != nil {
				t.Fatalf("topotest: build %s: %v", name, err)
			}
			f(t, m, ic)
		})
	}
}

// EachSmall is Each restricted to the mini machines — for per-node-pair
// sweeps and full simulation runs that would be slow at full scale.
func EachSmall(t *testing.T, f func(t *testing.T, m topology.Machine, ic topology.Interconnect)) {
	for _, name := range []string{"mini", "dfplus-mini"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := topology.Preset(name)
			if err != nil {
				t.Fatalf("topotest: %v", err)
			}
			ic, err := m.Build()
			if err != nil {
				t.Fatalf("topotest: build %s: %v", name, err)
			}
			f(t, m, ic)
		})
	}
}
