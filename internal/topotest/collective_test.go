// Determinism suite for the dependency-graph collective workloads: the
// graph executor must be exactly as reproducible as the flat replayer it
// replaced. Every knob that is contractually observation-only — re-running,
// RunBatch worker counts, the invariant auditor, the allocation pools —
// must leave a collective cell's full Result digest (clocks, events, comm
// times, link stats) bit-identical.
package topotest_test

import (
	"fmt"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest/policytest"
	"dragonfly/internal/trace"
)

// collectiveGraphs builds the suite's collective workloads at mini-machine
// scale: a pipelined ring all-reduce (chained deps, two-predecessor joins)
// and a windowed MoE all-to-all (fan-in joins, injection windowing).
func collectiveGraphs(t *testing.T) map[string]*trace.Graph {
	t.Helper()
	ring, err := trace.RingAllReduce(trace.RingAllReduceConfig{Ranks: 16, Bytes: 64 * trace.KB, Rounds: 1})
	if err != nil {
		t.Fatalf("RING: %v", err)
	}
	moe, err := trace.MoEAllToAll(trace.MoEAllToAllConfig{Ranks: 16, Bytes: 16 * trace.KB, Rounds: 1, Window: 4})
	if err != nil {
		t.Fatalf("MOE: %v", err)
	}
	return map[string]*trace.Graph{"RING": ring, "MOE": moe}
}

func collectiveConfig(t *testing.T, preset string, g *trace.Graph, place placement.Policy) core.Config {
	t.Helper()
	m, err := topology.Preset(preset)
	if err != nil {
		t.Fatalf("preset %s: %v", preset, err)
	}
	return core.Config{
		Topology:       m,
		Params:         network.DefaultParams(),
		Placement:      place,
		Routing:        routing.Adaptive,
		Graph:          g,
		Seed:           31,
		WatchdogEvents: 10_000_000_000,
	}
}

// TestCollectiveDeterminism proves, per machine x collective x placement
// cell, that a rerun, the auditor, and disabled pooling all reproduce the
// baseline digest exactly.
func TestCollectiveDeterminism(t *testing.T) {
	graphs := collectiveGraphs(t)
	for _, preset := range []string{"mini", "dfplus-mini"} {
		for _, app := range []string{"RING", "MOE"} {
			for _, place := range []placement.Policy{placement.Contiguous, placement.RandomNode} {
				preset, app, place := preset, app, place
				t.Run(fmt.Sprintf("%s/%s/%s", preset, app, place), func(t *testing.T) {
					t.Parallel()
					base := policytest.SimDigest(t, collectiveConfig(t, preset, graphs[app], place))

					if got := policytest.SimDigest(t, collectiveConfig(t, preset, graphs[app], place)); got != base {
						t.Errorf("rerun digest %s, want %s", got, base)
					}
					audited := collectiveConfig(t, preset, graphs[app], place)
					audited.Audit = true
					if got := policytest.SimDigest(t, audited); got != base {
						t.Errorf("audited digest %s, want %s — the auditor perturbed the run", got, base)
					}
					unpooled := collectiveConfig(t, preset, graphs[app], place)
					unpooled.Params.NoPacketPool = true
					unpooled.Params.Route.NoCache = true
					if got := policytest.SimDigest(t, unpooled); got != base {
						t.Errorf("pooling-off digest %s, want %s — the pools leaked into results", got, base)
					}
				})
			}
		}
	}
}

// TestCollectiveRunBatchWorkers proves worker-count independence: the same
// collective grid through RunBatch at 1, 2, and 4 workers produces
// digest-identical results in identical order.
func TestCollectiveRunBatchWorkers(t *testing.T) {
	graphs := collectiveGraphs(t)
	var cfgs []core.Config
	for _, preset := range []string{"mini", "dfplus-mini"} {
		for _, app := range []string{"RING", "MOE"} {
			for _, place := range []placement.Policy{placement.Contiguous, placement.RandomNode} {
				cfgs = append(cfgs, collectiveConfig(t, preset, graphs[app], place))
			}
		}
	}
	sequential, err := core.RunBatch(cfgs, 1)
	if err != nil {
		t.Fatalf("RunBatch(1): %v", err)
	}
	base := make([]string, len(sequential))
	for i, res := range sequential {
		base[i] = policytest.ResultDigest(res)
	}
	for _, workers := range []int{2, 4} {
		results, err := core.RunBatch(cfgs, workers)
		if err != nil {
			t.Fatalf("RunBatch(%d): %v", workers, err)
		}
		for i, res := range results {
			if got := policytest.ResultDigest(res); got != base[i] {
				t.Errorf("workers=%d cell %d (%s): digest %s, want %s",
					workers, i, cfgs[i].Name(), got, base[i])
			}
		}
	}
}
